//! Vendored offline stand-in for `proptest`.
//!
//! Covers the generation-side subset this workspace uses: strategies
//! (ranges, tuples, `Just`, `prop_map`, `prop_flat_map`,
//! `prop_recursive`, `prop_oneof!`, `collection::vec`, `any`), the
//! `proptest!`/`prop_assert*` macros, and a deterministic per-test RNG.
//! No shrinking: a failing case reports its case number and message,
//! and the fixed seed (hashed from the test path) makes every failure
//! reproducible by rerunning the test.

pub mod test_runner {
    use std::fmt;

    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        pub cases: u32,
        pub max_global_rejects: u32,
    }

    impl ProptestConfig {
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig {
                cases,
                ..ProptestConfig::default()
            }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig {
                cases: 64,
                max_global_rejects: 4096,
            }
        }
    }

    #[derive(Debug, Clone)]
    pub enum TestCaseError {
        Fail(String),
        Reject(String),
    }

    impl TestCaseError {
        pub fn fail(reason: impl Into<String>) -> Self {
            TestCaseError::Fail(reason.into())
        }

        pub fn reject(reason: impl Into<String>) -> Self {
            TestCaseError::Reject(reason.into())
        }
    }

    impl fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                TestCaseError::Fail(r) => write!(f, "{r}"),
                TestCaseError::Reject(r) => write!(f, "rejected: {r}"),
            }
        }
    }

    /// Deterministic generator: splitmix64 seeded from a hash of the
    /// test's module path + name, so each test draws a stable stream.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        pub fn for_test(test_path: &str) -> Self {
            // FNV-1a over the test path gives a stable, well-mixed seed.
            let mut h: u64 = 0xcbf29ce484222325;
            for b in test_path.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x100000001b3);
            }
            TestRng { state: h }
        }

        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e3779b97f4a7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
            z ^ (z >> 31)
        }
    }
}

pub mod strategy {
    use super::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};
    use std::rc::Rc;

    /// A generator of values of type `Self::Value`. Unlike upstream
    /// proptest there is no value tree / shrinking — `generate` draws a
    /// single concrete value.
    pub trait Strategy: Clone {
        type Value;

        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
            Self::Value: 'static,
        {
            let s = self;
            BoxedStrategy(Rc::new(move |rng| s.generate(rng)))
        }

        fn prop_map<O, F>(self, f: F) -> BoxedStrategy<O>
        where
            Self: Sized + 'static,
            Self::Value: 'static,
            O: 'static,
            F: Fn(Self::Value) -> O + 'static,
        {
            let s = self;
            BoxedStrategy(Rc::new(move |rng| f(s.generate(rng))))
        }

        fn prop_flat_map<S2, F>(self, f: F) -> BoxedStrategy<S2::Value>
        where
            Self: Sized + 'static,
            Self::Value: 'static,
            S2: Strategy + 'static,
            S2::Value: 'static,
            F: Fn(Self::Value) -> S2 + 'static,
        {
            let s = self;
            BoxedStrategy(Rc::new(move |rng| f(s.generate(rng)).generate(rng)))
        }

        /// Depth-bounded recursion: each extra level is an even choice
        /// between a leaf and one application of `f`, so generated
        /// values stay small. `_desired_size`/`_expected_branch` are
        /// accepted for upstream signature compatibility.
        fn prop_recursive<S2, F>(
            self,
            depth: u32,
            _desired_size: u32,
            _expected_branch: u32,
            f: F,
        ) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
            Self::Value: 'static,
            S2: Strategy<Value = Self::Value> + 'static,
            F: Fn(BoxedStrategy<Self::Value>) -> S2,
        {
            let leaf = self.boxed();
            let mut current = leaf.clone();
            for _ in 0..depth {
                let deeper = f(current).boxed();
                current = OneOf::new(vec![leaf.clone(), deeper]).boxed();
            }
            current
        }
    }

    /// Type-erased strategy; the unit of composition for every
    /// combinator above.
    pub struct BoxedStrategy<T>(pub(crate) Rc<dyn Fn(&mut TestRng) -> T>);

    impl<T> Clone for BoxedStrategy<T> {
        fn clone(&self) -> Self {
            BoxedStrategy(Rc::clone(&self.0))
        }
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            (self.0)(rng)
        }

        fn boxed(self) -> BoxedStrategy<T>
        where
            T: 'static,
        {
            self
        }
    }

    /// Always yields a clone of the wrapped value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Uniform choice between same-valued strategies (`prop_oneof!`).
    pub struct OneOf<T> {
        options: Vec<BoxedStrategy<T>>,
    }

    impl<T> Clone for OneOf<T> {
        fn clone(&self) -> Self {
            OneOf {
                options: self.options.clone(),
            }
        }
    }

    impl<T> OneOf<T> {
        pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
            OneOf { options }
        }
    }

    impl<T> Strategy for OneOf<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            let i = (rng.next_u64() % self.options.len() as u64) as usize;
            self.options[i].generate(rng)
        }
    }

    macro_rules! impl_range_strategy {
        ($($ty:ty),*) => {$(
            impl Strategy for Range<$ty> {
                type Value = $ty;
                fn generate(&self, rng: &mut TestRng) -> $ty {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    (self.start as i128 + (rng.next_u64() as u128 % span) as i128) as $ty
                }
            }
            impl Strategy for RangeInclusive<$ty> {
                type Value = $ty;
                fn generate(&self, rng: &mut TestRng) -> $ty {
                    let (start, end) = (*self.start(), *self.end());
                    assert!(start <= end, "empty range strategy");
                    let span = (end as i128 - start as i128) as u128 + 1;
                    (start as i128 + (rng.next_u64() as u128 % span) as i128) as $ty
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! impl_tuple_strategy {
        ($(($($name:ident . $idx:tt),+))*) => {$(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }

    impl_tuple_strategy! {
        (A.0)
        (A.0, B.1)
        (A.0, B.1, C.2)
        (A.0, B.1, C.2, D.3)
        (A.0, B.1, C.2, D.3, E.4)
        (A.0, B.1, C.2, D.3, E.4, F.5)
    }
}

pub mod collection {
    use super::strategy::{BoxedStrategy, Strategy};
    use std::ops::{Range, RangeInclusive};
    use std::rc::Rc;

    /// Element-count specification for [`vec`]: an exact size or a
    /// range of sizes.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        min: usize,
        max_inclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                min: n,
                max_inclusive: n,
            }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                min: r.start,
                max_inclusive: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            SizeRange {
                min: *r.start(),
                max_inclusive: *r.end(),
            }
        }
    }

    pub fn vec<S>(element: S, size: impl Into<SizeRange>) -> BoxedStrategy<Vec<S::Value>>
    where
        S: Strategy + 'static,
        S::Value: 'static,
    {
        let size = size.into();
        BoxedStrategy(Rc::new(move |rng| {
            let span = (size.max_inclusive - size.min) as u64 + 1;
            let n = size.min + (rng.next_u64() % span) as usize;
            (0..n).map(|_| element.generate(rng)).collect()
        }))
    }
}

pub mod arbitrary {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;

    pub trait Arbitrary: Sized {
        type Strategy: Strategy<Value = Self>;
        fn arbitrary() -> Self::Strategy;
    }

    /// Full-domain strategy for primitives (`any::<T>()`).
    #[derive(Debug, Clone, Copy, Default)]
    pub struct AnyPrimitive<T>(std::marker::PhantomData<T>);

    macro_rules! impl_arbitrary_int {
        ($($ty:ty),*) => {$(
            impl Strategy for AnyPrimitive<$ty> {
                type Value = $ty;
                fn generate(&self, rng: &mut TestRng) -> $ty {
                    rng.next_u64() as $ty
                }
            }
            impl Arbitrary for $ty {
                type Strategy = AnyPrimitive<$ty>;
                fn arbitrary() -> Self::Strategy {
                    AnyPrimitive(std::marker::PhantomData)
                }
            }
        )*};
    }

    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for AnyPrimitive<bool> {
        type Value = bool;
        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for bool {
        type Strategy = AnyPrimitive<bool>;
        fn arbitrary() -> Self::Strategy {
            AnyPrimitive(std::marker::PhantomData)
        }
    }

    pub fn any<T: Arbitrary>() -> T::Strategy {
        T::arbitrary()
    }
}

pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest};
}

#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::OneOf::new(vec![
            $($crate::strategy::Strategy::boxed($strategy)),+
        ])
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                concat!("assertion failed: ", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        if !(left == right) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: `{:?}` != `{:?}`",
                left, right
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        if !(left == right) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "{}: `{:?}` != `{:?}`",
                format!($($fmt)+),
                left,
                right
            )));
        }
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        if left == right {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: `{:?}` == `{:?}`",
                left, right
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        if left == right {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "{}: `{:?}` == `{:?}`",
                format!($($fmt)+),
                left,
                right
            )));
        }
    }};
}

#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject(
                concat!("assumption failed: ", stringify!($cond)),
            ));
        }
    };
}

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_body! { config = $config; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_body! {
            config = $crate::test_runner::ProptestConfig::default();
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_body {
    (config = $config:expr;
     $($(#[$attr:meta])*
       fn $name:ident($($pat:pat in $strategy:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$attr])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $config;
                let mut rng = $crate::test_runner::TestRng::for_test(
                    concat!(module_path!(), "::", stringify!($name)),
                );
                let mut passed: u32 = 0;
                let mut rejected: u32 = 0;
                while passed < config.cases {
                    $(
                        let $pat = $crate::strategy::Strategy::generate(&$strategy, &mut rng);
                    )+
                    let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| { $body ::std::result::Result::Ok(()) })();
                    match outcome {
                        ::std::result::Result::Ok(()) => passed += 1,
                        ::std::result::Result::Err(
                            $crate::test_runner::TestCaseError::Reject(_),
                        ) => {
                            rejected += 1;
                            if rejected > config.max_global_rejects {
                                panic!(
                                    "proptest {}: too many rejected cases ({})",
                                    stringify!($name),
                                    rejected
                                );
                            }
                        }
                        ::std::result::Result::Err(
                            $crate::test_runner::TestCaseError::Fail(message),
                        ) => {
                            panic!(
                                "proptest {} failed at case {}: {}",
                                stringify!($name),
                                passed,
                                message
                            );
                        }
                    }
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(128))]

        #[test]
        fn ranges_and_tuples((a, b) in (0i64..10, 5u8..=9)) {
            prop_assert!((0..10).contains(&a));
            prop_assert!((5..=9).contains(&b));
        }

        #[test]
        fn maps_and_vecs(
            v in crate::collection::vec((0usize..3).prop_map(|i| i * 2), 1..5),
        ) {
            prop_assert!(!v.is_empty() && v.len() < 5);
            for x in v {
                prop_assert!(x % 2 == 0 && x < 6);
            }
        }

        #[test]
        fn oneof_and_just(x in prop_oneof![Just(1i64), Just(2), 10i64..20]) {
            prop_assert!(x == 1 || x == 2 || (10..20).contains(&x), "got {}", x);
        }

        #[test]
        fn recursion_is_bounded(
            e in Just(1u32).prop_recursive(3, 8, 2, |inner| {
                (inner.clone(), inner).prop_map(|(a, b)| a + b)
            })
        ) {
            // Depth 3 with binary branching caps the sum at 2^3 leaves.
            prop_assert!((1..=8).contains(&e), "got {}", e);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let strat = crate::collection::vec(0i64..1000, 3..6);
        let mut a = TestRng::for_test("t");
        let mut b = TestRng::for_test("t");
        for _ in 0..50 {
            assert_eq!(strat.generate(&mut a), strat.generate(&mut b));
        }
    }

    #[test]
    fn rejects_do_not_fail_the_run() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(8))]
            #[allow(unused)]
            fn inner(x in 0i64..100) {
                prop_assume!(x % 2 == 0);
                prop_assert!(x % 2 == 0);
            }
        }
        inner();
    }
}
