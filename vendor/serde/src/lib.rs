//! Vendored offline stand-in for `serde`.
//!
//! The workspace only uses the `Serialize`/`Deserialize` derives (no
//! serialization calls), so this crate just re-exports the no-op
//! derive macros. Empty marker traits are provided under the same
//! names in case a bound is ever written against them.

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

pub trait Serialize {}
pub trait Deserialize<'de> {}
