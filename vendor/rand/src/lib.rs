//! Vendored offline stand-in for `rand` 0.8.
//!
//! Implements the subset the workspace uses: `StdRng::seed_from_u64`
//! plus `Rng::gen_range` over integer ranges. The generator is
//! xoshiro256++ seeded through splitmix64 — deterministic, fast, and
//! statistically solid for schedule sampling; no OS entropy source.

use std::ops::{Range, RangeInclusive};

pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// The ranges `gen_range` accepts. Implemented for the integer range
/// types the workspace samples from.
pub trait SampleRange<T> {
    fn sample(self, rng: &mut impl RngCore) -> T;
}

macro_rules! impl_sample_range {
    ($($ty:ty),*) => {$(
        impl SampleRange<$ty> for Range<$ty> {
            fn sample(self, rng: &mut impl RngCore) -> $ty {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + (rng.next_u64() as u128 % span) as i128) as $ty
            }
        }
        impl SampleRange<$ty> for RangeInclusive<$ty> {
            fn sample(self, rng: &mut impl RngCore) -> $ty {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                (start as i128 + (rng.next_u64() as u128 % span) as i128) as $ty
            }
        }
    )*};
}

impl_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

pub trait Rng: RngCore {
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        (self.next_u64() as f64 / u64::MAX as f64) < p
    }
}

impl<T: RngCore> Rng for T {}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e3779b97f4a7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// xoshiro256++ — not the upstream StdRng (ChaCha12), but this
    /// workspace only relies on determinism for a fixed seed, which any
    /// fixed algorithm provides.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut s = [0u64; 4];
            for slot in &mut s {
                *slot = splitmix64(&mut sm);
            }
            // All-zero state would be a fixed point; splitmix64 of any
            // seed cannot produce four zeros, but guard anyway.
            if s.iter().all(|&w| w == 0) {
                s[0] = 1;
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0usize..97), b.gen_range(0usize..97));
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(-5i64..17);
            assert!((-5..17).contains(&v));
            let w = rng.gen_range(3u8..=9);
            assert!((3..=9).contains(&w));
        }
    }
}
