//! Vendored offline stand-in for `criterion`.
//!
//! Implements the harness subset the bench crate uses — groups,
//! `bench_function`, `BenchmarkId`, `Bencher::iter` — with a simple
//! median-of-samples wall-clock measurement instead of criterion's
//! statistical machinery. Good enough for relative comparisons; not a
//! substitute for the real crate's confidence intervals.

use std::fmt::Display;
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Median results of every bench reported so far, as `(id, ns)`.
/// Drained by [`take_results`] so bench mains can export an artifact.
static RESULTS: Mutex<Vec<(String, f64)>> = Mutex::new(Vec::new());

/// Drains and returns the `(benchmark id, median ns)` rows recorded
/// since the last call. Lets a bench target's `main` write the measured
/// numbers to a machine-readable file after the groups have run.
pub fn take_results() -> Vec<(String, f64)> {
    std::mem::take(&mut RESULTS.lock().unwrap())
}

#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(id: String) -> Self {
        BenchmarkId { id }
    }
}

pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Time the routine `sample_size` times (after one warm-up call)
    /// and record each sample.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        std::hint::black_box(routine());
        for _ in 0..self.sample_size {
            let start = Instant::now();
            std::hint::black_box(routine());
            self.samples.push(start.elapsed());
        }
    }
}

fn report(id: &str, samples: &mut [Duration]) {
    if samples.is_empty() {
        println!("{id:<48} (no samples)");
        return;
    }
    samples.sort();
    let median = samples[samples.len() / 2];
    let best = samples[0];
    RESULTS
        .lock()
        .unwrap()
        .push((id.to_string(), median.as_nanos() as f64));
    println!(
        "{id:<48} median {:>12.3?}   best {:>12.3?}   ({} samples)",
        median,
        best,
        samples.len()
    );
}

pub struct BenchmarkGroup<'a> {
    name: String,
    criterion: &'a mut Criterion,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn bench_function<I, F>(&mut self, id: I, mut f: F) -> &mut Self
    where
        I: Into<BenchmarkId>,
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut bencher = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size,
        };
        f(&mut bencher);
        let full = format!("{}/{}", self.name, id.id);
        report(&full, &mut bencher.samples);
        self
    }

    pub fn bench_with_input<I, P, F>(&mut self, id: I, input: &P, mut f: F) -> &mut Self
    where
        I: Into<BenchmarkId>,
        P: ?Sized,
        F: FnMut(&mut Bencher, &P),
    {
        self.bench_function(id, |b| f(b, input))
    }

    pub fn finish(&mut self) {
        let _ = &self.criterion;
    }
}

#[derive(Default)]
pub struct Criterion {
    default_sample_size: usize,
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let sample_size = if self.default_sample_size == 0 {
            10
        } else {
            self.default_sample_size
        };
        BenchmarkGroup {
            name: name.into(),
            criterion: self,
            sample_size,
        }
    }

    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.default_sample_size = n.max(1);
        self
    }

    pub fn bench_function<I, F>(&mut self, id: I, f: F) -> &mut Self
    where
        I: Into<BenchmarkId>,
        F: FnMut(&mut Bencher),
    {
        self.benchmark_group("bench").bench_function(id, f);
        self
    }
}

/// Re-exported for API compatibility; benches in this workspace import
/// `std::hint::black_box` directly.
pub use std::hint::black_box;

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_reports() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("t");
        group.sample_size(3);
        let mut runs = 0usize;
        group.bench_function(BenchmarkId::new("f", 1), |b| b.iter(|| runs += 1));
        group.finish();
        // One warm-up call plus three samples.
        assert_eq!(runs, 4);
    }
}
